// reverse-path: route the feedback channel through a real congested
// queue — the regime the paper's conservativeness analysis assumes
// away — and watch what imperfect feedback does to the control loop.
//
// A TFRC flow and a TCP flow send data over a 10 Mb/s forward
// bottleneck, but their receiver reports and ACKs return over a routed
// reverse link at 1/20 of the forward capacity, shared with
// unresponsive heavy-tailed cross traffic. Feedback packets queue
// behind kilobyte bursts, arrive compressed, and drop when the reverse
// buffer overflows; TFRC falls back to its no-feedback timer, TCP's
// ack clock goes lumpy. The same experiment with the reverse path
// uncongested (the dumbbell default) runs first as the control.
//
// Run: go run ./examples/reverse-path
package main

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/formula"
	"repro/internal/netsim"
	"repro/internal/tcp"
	"repro/internal/tfrc"
	"repro/internal/topology"
)

const (
	capacity = 1.25e6 // 10 Mb/s forward
	revRatio = 20.0   // reverse path at capacity/revRatio
	warmup   = 50.0
	measured = 300.0
)

// runOnce builds the two-node graph, optionally narrowing and loading
// the reverse path, and returns the measured stats.
func runOnce(congested bool) (tfrc.Stats, tcp.Stats, float64, float64) {
	var sched des.Scheduler
	net := topology.New(&sched)
	src := net.AddNode("src")
	dst := net.AddNode("dst")
	fwd := net.AddLink(src, dst, capacity, 0.01, netsim.NewDropTail(64))

	revCap := capacity
	if congested {
		revCap = capacity / revRatio
	}
	rev := net.AddLink(dst, src, revCap, 0.005, netsim.NewDropTail(64))
	net.SetDefaultRoute(fwd)
	net.SetDefaultReverseRoute(rev)
	net.SetReverseJitter(0.2, 7)

	tfrcSnd, _ := tfrc.NewFlow(&sched, net, 0, tfrc.DefaultConfig(), 0.005, 0.02)
	tcpSnd, _ := tcp.NewFlow(&sched, net, 1, tcp.DefaultConfig(), 0.005, 0.02)
	tfrcSnd.Start()
	sched.At(0.21, tcpSnd.Start)

	if congested {
		// Saturate the reverse bottleneck with on/off cross traffic
		// offering ~90% of its capacity.
		net.AttachSink(2, rev)
		const meanBurst, pktSize = 20.0, 1000.0
		target := 0.9 * revCap
		meanOff := meanBurst*pktSize/target - meanBurst*pktSize/revCap
		ct := netsim.NewCrossTraffic(&sched, net, 2, revCap, meanBurst, 1.5,
			meanOff, int(pktSize), 11)
		sched.At(0.4, ct.Start)
	}

	sched.RunUntil(warmup)
	tfrcSnd.ResetStats()
	tcpSnd.ResetStats()
	sched.RunUntil(warmup + measured)

	q := net.Link(rev).Queue().(*netsim.DropTail)
	offered := float64(q.Drops + net.Link(rev).Forwarded)
	dropRate := 0.0
	if offered > 0 {
		dropRate = float64(q.Drops) / offered
	}
	if err := net.CheckLeaks(); err != nil {
		panic(err)
	}
	return tfrcSnd.Stats(), tcpSnd.Stats(), dropRate, net.BaseRTT(0)
}

func report(label string, tf tfrc.Stats, tc tcp.Stats, dropRate, baseRTT float64) {
	fmt.Printf("%s (base RTT %.0f ms, reverse drop rate %.2f%%)\n",
		label, baseRTT*1000, dropRate*100)
	fmt.Printf("  TFRC: x̄ = %7.1f pkt/s   p = %.5f   r = %5.1f ms   reports rcvd = %d   nf halvings = %d\n",
		tf.Throughput, tf.LossEventRate, tf.MeanRTT*1000, tf.FeedbackReceived, tf.NoFeedbackHalvings)
	fmt.Printf("  TCP:  x̄'= %7.1f pkt/s   p'= %.5f   r'= %5.1f ms   acks/pkt = %.3f\n",
		tc.Throughput, tc.LossEventRate, tc.MeanRTT*1000,
		float64(tc.AcksReceived)/float64(max(tc.PacketsSent, 1)))
	if tf.LossEventRate > 0 && tf.MeanRTT > 0 {
		f := formula.NewPFTKStandard(formula.ParamsForRTT(tf.MeanRTT))
		fmt.Printf("  conservativeness: x̄/f(p,r) = %.3f\n", tf.Throughput/f.Rate(tf.LossEventRate))
	}
	fmt.Println()
}

func main() {
	fmt.Printf("routed reverse path: TFRC + TCP forward at 10 Mb/s, feedback/acks through a real queue\n\n")
	tf, tc, drop, rtt := runOnce(false)
	report("control: uncongested reverse link", tf, tc, drop, rtt)
	tf, tc, drop, rtt = runOnce(true)
	report(fmt.Sprintf("congested reverse link (1/%.0f capacity + 90%% cross load)", revRatio), tf, tc, drop, rtt)
	fmt.Println("The forward path never changed — every difference above is feedback-path damage.")
}
