// audio-adaptive: the Claim 2 / Figure 6 scenario — an audio-like sender
// with a fixed packet rate (one packet per 20 ms) that modulates packet
// LENGTH by the equation, through a Bernoulli dropper. The loss process
// is then independent of the send rate (cov[X,S] = 0) and Theorem 2
// governs: SQRT stays conservative, PFTK becomes NON-conservative under
// heavy loss because f(1/x) is convex there.
//
// Run: go run ./examples/audio-adaptive
package main

import (
	"fmt"

	"repro/internal/cbr"
	"repro/internal/formula"
)

func main() {
	params := formula.ParamsForRTT(0.2)
	const spacing = 0.02 // 50 packets/s, as in the paper's ns-2 run
	events := 150000

	fmt.Println("audio sender: fixed packet rate, equation-modulated length, L=4")
	fmt.Println("p\tSQRT\tPFTK-std\tPFTK-simp\tcv²[θ̂]")
	seed := uint64(100)
	for _, p := range []float64{0.01, 0.05, 0.1, 0.2, 0.25} {
		row := []float64{}
		var cv2 float64
		for _, f := range formula.All(params) {
			seed++
			res := cbr.NewAudio(f, 4, spacing, p, seed).Run(events, events/10)
			row = append(row, res.Normalized)
			cv2 = res.CVEstimatorSq
		}
		fmt.Printf("%.2f\t%.4f\t%.4f\t\t%.4f\t\t%.4f\n", p, row[0], row[1], row[2], cv2)
	}
	fmt.Println()
	fmt.Println("Values above 1 under heavy loss for the PFTK formulae reproduce")
	fmt.Println("the paper's Figure 6: the only practical non-conservative regime.")
}
