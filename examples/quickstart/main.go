// Quickstart: run the paper's basic equation-based rate control on a
// designed loss process and check conservativeness (Theorem 1).
//
// It builds the PFTK-simplified throughput formula, drives the basic
// control with i.i.d. shifted-exponential loss-event intervals at a
// chosen loss-event rate and coefficient of variation, and prints the
// normalized throughput x̄/f(p) together with the theory's verdict.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/formula"
	"repro/internal/lossmodel"
	"repro/internal/rng"
)

func main() {
	f := formula.NewPFTKSimplified(formula.DefaultParams())

	fmt.Println("basic control, PFTK-simplified, TFRC weights L=8, cv[θ]=0.9")
	fmt.Println("p\tx̄/f(p)\tcov[θ,θ̂]p²\tverdict")
	for _, p := range []float64{0.01, 0.05, 0.1, 0.2, 0.4} {
		cfg := core.Config{
			Formula: f,
			Weights: estimator.TFRCWeights(8),
			Process: lossmodel.DesignShiftedExp(p, 0.9, rng.New(42)),
			Events:  100000,
		}
		res := core.RunBasic(cfg)
		lo, hi := core.EstimatorRange(core.Config{
			Formula: f,
			Weights: estimator.TFRCWeights(8),
			Process: lossmodel.DesignShiftedExp(p, 0.9, rng.New(42)),
			Events:  100000,
		}, 20000, 0.05, 0.95)
		rep := core.Classify(f, res, lo, hi, 0.05)
		fmt.Printf("%.2f\t%.4f\t%+.4f\t\t%s\n",
			p, res.Normalized, res.CovThetaHatNorm, rep.Verdict)
	}
	fmt.Println()
	fmt.Println("Conservativeness strengthens with p — the PFTK throughput drop")
	fmt.Println("under heavy loss that the paper's Claim 1 explains.")
}
