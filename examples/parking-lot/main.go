// parking-lot: build a three-bottleneck parking-lot chain directly on
// the topology API — nodes, directed links, per-flow static source
// routes — and race one long TFRC flow and one long TCP flow across all
// three congested hops against short TCP flows crossing one hop each.
//
// This is the multi-bottleneck setting the paper's dumbbell experiments
// never exercised: the long flows accumulate loss at every hop, and the
// conservativeness question becomes whether TFRC still stays at or
// below its formula's rate when p is a product of several independent
// drop points.
//
// Run: go run ./examples/parking-lot
package main

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/formula"
	"repro/internal/netsim"
	"repro/internal/tcp"
	"repro/internal/tfrc"
	"repro/internal/topology"
)

func main() {
	const (
		hops     = 3
		capacity = 1.25e6 // 10 Mb/s per hop
		hopDelay = 0.01   // 10 ms per hop
		buffer   = 64
		warmup   = 50.0
		measured = 300.0
	)

	var sched des.Scheduler
	net := topology.New(&sched)

	// Chain of hops+1 nodes, one bottleneck link per hop.
	nodes := make([]topology.NodeID, hops+1)
	for i := range nodes {
		nodes[i] = net.AddNode(fmt.Sprintf("router%d", i))
	}
	route := make([]topology.LinkID, hops)
	for i := 0; i < hops; i++ {
		route[i] = net.AddLink(nodes[i], nodes[i+1], capacity, hopDelay,
			netsim.NewDropTail(buffer))
	}
	net.SetReverseJitter(0.2, 7)

	// Long flows: end to end over every hop.
	flow := 0
	net.SetRoute(flow, route...)
	tfrcSnd, _ := tfrc.NewFlow(&sched, net, flow, tfrc.DefaultConfig(), 0.005, 0.025)
	flow++
	net.SetRoute(flow, route...)
	tcpSnd, _ := tcp.NewFlow(&sched, net, flow, tcp.DefaultConfig(), 0.005, 0.025)
	flow++

	// Crossing flows: two short TCP flows entering and leaving at each
	// hop, congesting exactly one bottleneck.
	var cross []*tcp.Sender
	for h := 0; h < hops; h++ {
		for i := 0; i < 2; i++ {
			net.SetRoute(flow, route[h])
			snd, _ := tcp.NewFlow(&sched, net, flow, tcp.DefaultConfig(), 0, 0.02)
			cross = append(cross, snd)
			sched.At(0.1*float64(flow), snd.Start)
			flow++
		}
	}
	tfrcSnd.Start()
	sched.At(0.21, tcpSnd.Start)

	sched.RunUntil(warmup)
	tfrcSnd.ResetStats()
	tcpSnd.ResetStats()
	for _, s := range cross {
		s.ResetStats()
	}
	sched.RunUntil(warmup + measured)

	tf, tc := tfrcSnd.Stats(), tcpSnd.Stats()
	fmt.Printf("parking lot: %d × 10 Mb/s bottlenecks, long TFRC + long TCP vs %d crossing TCP\n\n",
		hops, len(cross))
	fmt.Printf("long TFRC: x̄ = %7.1f pkt/s   p = %.5f   r = %.1f ms  (base %.1f ms)\n",
		tf.Throughput, tf.LossEventRate, tf.MeanRTT*1000, net.BaseRTT(0)*1000)
	fmt.Printf("long TCP:  x̄'= %7.1f pkt/s   p'= %.5f   r'= %.1f ms\n\n",
		tc.Throughput, tc.LossEventRate, tc.MeanRTT*1000)

	var crossX float64
	for _, s := range cross {
		crossX += s.Stats().Throughput
	}
	fmt.Printf("crossing TCP (aggregate over %d flows): %.1f pkt/s\n\n", len(cross), crossX)

	if tf.LossEventRate > 0 && tf.MeanRTT > 0 {
		f := formula.NewPFTKStandard(formula.ParamsForRTT(tf.MeanRTT))
		norm := tf.Throughput / f.Rate(tf.LossEventRate)
		fmt.Printf("conservativeness across %d bottlenecks: x̄/f(p,r) = %.3f\n", hops, norm)
		fmt.Println("(Claim 1 predicts <= 1 up to estimator noise — now checkable beyond the dumbbell)")
	}

	// The topology accounts for every freelist packet even mid-flight.
	if err := net.CheckLeaks(); err != nil {
		panic(err)
	}
}
