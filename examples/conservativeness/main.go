// conservativeness: sweep the loss-event rate and the loss-interval
// variability, reproducing the Claim 1 effects of Figures 3 and 4, and
// verify the eq. (10) and Proposition 4 bounds along the way.
//
// Run: go run ./examples/conservativeness
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/formula"
	"repro/internal/lossmodel"
	"repro/internal/rng"
)

func main() {
	params := formula.DefaultParams()
	events := 80000

	fmt.Println("== Figure 3: normalized throughput vs p (cv = 1-1/1000) ==")
	fmt.Println("p\tSQRT L4\tPFTK L4\tPFTK L16")
	cv := 1 - 1.0/1000
	seed := uint64(7)
	for _, p := range []float64{0.05, 0.1, 0.2, 0.3, 0.4} {
		run := func(f formula.Formula, L int) float64 {
			seed++
			return core.RunBasic(core.Config{
				Formula: f,
				Weights: estimator.TFRCWeights(L),
				Process: lossmodel.DesignShiftedExp(p, cv, rng.New(seed)),
				Events:  events,
			}).Normalized
		}
		fmt.Printf("%.2f\t%.3f\t%.3f\t%.3f\n",
			p,
			run(formula.NewSQRT(params), 4),
			run(formula.NewPFTKSimplified(params), 4),
			run(formula.NewPFTKSimplified(params), 16))
	}

	fmt.Println()
	fmt.Println("== Figure 4: normalized throughput vs cv (p = 0.1, PFTK, L=8) ==")
	fmt.Println("cv\tx̄/f(p)\teq.(10) bound ok")
	f := formula.NewPFTKSimplified(params)
	for _, c := range []float64{0.2, 0.4, 0.6, 0.8, 0.999} {
		seed++
		res := core.RunBasic(core.Config{
			Formula: f,
			Weights: estimator.TFRCWeights(8),
			Process: lossmodel.DesignShiftedExp(0.1, c, rng.New(seed)),
			Events:  events,
		})
		bound, valid := core.Theorem1Bound(f, res.LossEventRate, res.CovThetaHat)
		ok := valid && res.Throughput <= bound*1.01
		fmt.Printf("%.3f\t%.3f\t%v\n", c, res.Normalized, ok)
	}

	fmt.Println()
	fmt.Println("== Proposition 4: PFTK-standard overshoot bound ==")
	std := formula.NewPFTKStandard(params)
	bound := core.Prop4Bound(std, 1.01, 100, 20000)
	seed++
	res := core.RunBasic(core.Config{
		Formula: std,
		Weights: estimator.TFRCWeights(8),
		Process: lossmodel.DesignShiftedExp(0.15, 0.9, rng.New(seed)),
		Events:  events,
	})
	fmt.Printf("bound r = %.5f, measured x̄/f(p) = %.5f (must be <= bound under C1)\n",
		bound, res.Normalized)
}
