// tfrc-vs-tcp: packet-level dumbbell experiment comparing TFRC and TCP,
// printing the paper's four-way TCP-friendliness breakdown
// (Section IV / Figures 12-15):
//
//	x̄/f(p,r)   conservativeness of TFRC
//	p'/p        TCP's vs TFRC's loss-event rate
//	r'/r        TCP's vs TFRC's mean RTT
//	x̄'/f(p',r') TCP's obedience to its own formula
//
// Run: go run ./examples/tfrc-vs-tcp [-pairs N] [-seconds S]
package main

import (
	"flag"
	"fmt"
	"math"

	"repro/internal/experiments"
	"repro/internal/formula"
)

func main() {
	pairs := flag.Int("pairs", 1, "number of TFRC and of TCP connections")
	seconds := flag.Float64("seconds", 300, "measured simulation seconds")
	flag.Parse()

	pr := experiments.NS2Profile()
	pr.Duration = *seconds
	cfg := pr.Config(*pairs, 8, 2024)
	res := experiments.RunSim(cfg)

	tf, tc := res.TFRC, res.TCP
	ftf := formula.NewPFTKStandard(formula.ParamsForRTT(tf.MeanRTT))
	ftc := formula.NewPFTKStandard(formula.ParamsForRTT(tc.MeanRTT))

	fmt.Printf("dumbbell: 15 Mb/s RED bottleneck, %d TFRC + %d TCP, %.0f s\n\n",
		*pairs, *pairs, *seconds)
	fmt.Printf("TFRC: x̄ = %7.1f pkt/s   p = %.5f   r = %.1f ms   (%d loss events)\n",
		tf.Throughput, tf.LossEventRate, tf.MeanRTT*1000, tf.Events)
	fmt.Printf("TCP:  x̄'= %7.1f pkt/s   p'= %.5f   r'= %.1f ms   (%d loss events)\n\n",
		tc.Throughput, tc.LossEventRate, tc.MeanRTT*1000, tc.Events)

	fmt.Println("TCP-friendliness breakdown (values near 1 are neutral):")
	fmt.Printf("  throughput ratio x̄/x̄'  = %.3f\n", tf.Throughput/tc.Throughput)
	fmt.Printf("  (1) x̄ /f(p, r)  [TFRC conservativeness]   = %.3f\n",
		tf.Throughput/ftf.Rate(math.Max(tf.LossEventRate, 1e-9)))
	fmt.Printf("  (2) p'/p         [loss-event rates]        = %.3f\n",
		tc.LossEventRate/tf.LossEventRate)
	fmt.Printf("  (3) r'/r         [round-trip times]        = %.3f\n",
		tc.MeanRTT/tf.MeanRTT)
	fmt.Printf("  (4) x̄'/f(p',r') [TCP obeys its formula]   = %.3f\n",
		tc.Throughput/ftc.Rate(math.Max(tc.LossEventRate, 1e-9)))
	fmt.Println()
	fmt.Println("With few connections, (2) p'/p > 1 and (4) < 1 are the paper's")
	fmt.Println("two causes of TFRC's non-TCP-friendliness at small p.")
}
